package store

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// put stores a payload and fails the test if it does not read back.
func put(t *testing.T, s *Store, key string, data []byte) {
	t.Helper()
	s.Put(key, data)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Put(%q) did not read back (ok=%v)", key, ok)
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"levels": 3, "stats": {"buffers": 7}}`)
	put(t, s, "k-abc+verify", payload)

	// A fresh store over the same directory serves the entry from disk.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("k-abc+verify")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("reopened store: ok=%v data=%q", ok, got)
	}
	st := s2.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 0 {
		t.Errorf("reopened stats: %+v", st)
	}
	if _, ok := s2.Get("never-stored"); ok {
		t.Error("unknown key reported a hit")
	}
	if st := s2.Stats(); st.Misses != 1 {
		t.Errorf("miss not counted: %+v", st)
	}
}

// TestCrashSafety simulates a process killed between the temp-file write
// and the rename: the leftover *.tmp file must be cleaned up on Open and
// the half-written entry must resolve as a clean miss, while complete
// entries survive untouched.
func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "survivor", []byte(`{"ok":true}`))

	// A torn temp write: partial gzip bytes under the name CreateTemp would
	// have used, never renamed into place.
	tmp := filepath.Join(dir, entryFile("victim")+".123.tmp")
	if err := os.WriteFile(tmp, []byte("\x1f\x8b\x08 torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stray .tmp file survived Open")
	}
	if _, ok := s2.Get("victim"); ok {
		t.Error("half-written entry served a hit, want clean miss")
	}
	if data, ok := s2.Get("survivor"); !ok || string(data) != `{"ok":true}` {
		t.Errorf("complete entry lost after crash recovery: ok=%v data=%q", ok, data)
	}
}

// TestEvictionOrder pins LRU-by-atime eviction under the byte budget: the
// least recently *accessed* entry goes first, and a Get refreshes recency.
func TestEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	// Budget for roughly two compressed entries; incompressible payloads
	// keep the on-disk sizes predictable.
	payload := func(i int) []byte {
		b := make([]byte, 4096)
		for j := range b {
			b[j] = byte((i*31 + j*17) % 251)
		}
		return b
	}
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", payload(1))
	sizeA := s.Stats().Bytes
	s.maxBytes = 2*sizeA + sizeA/2 // fits two entries, not three

	s.Put("b", payload(2))
	if _, ok := s.Get("a"); !ok { // refresh a: b is now oldest
		t.Fatal("a missing before overflow")
	}
	s.Put("c", payload(3))

	if _, ok := s.Get("b"); ok {
		t.Error("b survived, want evicted as oldest-accessed")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%s evicted, want kept", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats after eviction: %+v", st)
	}

	// The access order survives a reopen: a was touched after c was
	// written... actually c is newest; touch a once more so the manifest
	// marks c as oldest, then overflow after reopening.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing")
	}
	s2, err := Open(dir, s.maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	s2.Put("d", payload(4))
	if _, ok := s2.Get("c"); ok {
		t.Error("c survived post-reopen overflow, want evicted by persisted atime order")
	}
	if _, ok := s2.Get("a"); !ok {
		t.Error("a evicted post-reopen, want kept (freshest persisted atime)")
	}
}

// TestCorruptEntryIsDeletedAndMisses pins corruption tolerance: a damaged
// entry file is deleted on the failed read and reported as a miss, never an
// error.
func TestCorruptEntryIsDeletedAndMisses(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	put(t, s, "good", []byte(`{"fine":1}`))
	s.Put("bad", []byte(`{"doomed":1}`))

	// Flip bytes in the middle of bad's file so the gzip CRC fails.
	path := filepath.Join(dir, entryFile("bad"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+4 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("bad"); ok {
		t.Fatal("corrupt entry served a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry file survived the failed read")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Entries != 1 {
		t.Errorf("stats after corruption: %+v", st)
	}
	// The second lookup is an ordinary miss (entry gone), and the intact
	// neighbour still reads.
	if _, ok := s.Get("bad"); ok {
		t.Error("deleted corrupt entry resurrected")
	}
	if _, ok := s.Get("good"); !ok {
		t.Error("intact entry lost alongside the corrupt one")
	}
}

// TestManifestRebuild pins the self-describing layout: with the manifest
// deleted (or replaced by junk), Open recovers every entry by reading the
// keys back from the gzip headers; undecodable entry files are deleted.
func TestManifestRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"alpha", "beta+verify", "gamma"}
	for i, k := range keys {
		put(t, s, k, []byte(fmt.Sprintf(`{"i":%d}`, i)))
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An entry-shaped file that is not gzip at all must be swept, and an
	// entry whose header key does not match its file name (a renamed or
	// planted file) must not be adopted under the forged name.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+entrySuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	var forged bytes.Buffer
	zw := gzip.NewWriter(&forged)
	zw.Name = "some-other-key"
	zw.Write([]byte(`{}`))
	zw.Close()
	forgedPath := filepath.Join(dir, strings.Repeat("cd", 32)+entrySuffix)
	if err := os.WriteFile(forgedPath, forged.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		data, ok := s2.Get(k)
		if !ok || string(data) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Errorf("key %q after rebuild: ok=%v data=%q", k, ok, data)
		}
	}
	if got := s2.Len(); got != len(keys) {
		t.Errorf("rebuilt store has %d entries, want %d", got, len(keys))
	}
	if _, ok := s2.Get("some-other-key"); ok {
		t.Error("forged entry adopted under its header key")
	}
	if _, err := os.Stat(forgedPath); !os.IsNotExist(err) {
		t.Error("forged entry file survived the rebuild")
	}
}

// TestOversizedAndConcurrent pins that an entry larger than the whole
// budget is refused instead of evicting everything else, and exercises
// concurrent access; run with -race.
func TestOversizedAndConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	huge := make([]byte, 2<<20)
	rand.New(rand.NewSource(1)).Read(huge) // incompressible beyond the budget
	s.Put("huge", huge)
	if _, ok := s.Get("huge"); ok {
		t.Error("entry over the whole budget was stored")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("k-%d", (g+i)%10)
				s.Put(k, []byte(fmt.Sprintf(`{"k":%q}`, k)))
				s.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 10 || st.Corrupt != 0 {
		t.Errorf("stats after concurrent traffic: %+v", st)
	}
}
