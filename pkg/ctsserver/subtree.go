package ctsserver

import (
	"sync"

	"repro/pkg/cts"
	"repro/pkg/ctsserver/store"
)

// subtreeDiskMinBytes is the write-through size floor of the subtree disk
// tier.  The disk store rewrites its manifest on every structural change, so
// persisting each of a large job's thousands of tiny leaf-adjacent merges
// would turn one synthesis into quadratic manifest churn.  Coarse sub-trees
// are where the reuse value is — one hit near the root stands in for a whole
// region — so only values at least this large go to disk; the memory tier
// holds everything.
const subtreeDiskMinBytes = 16 << 10

// subtreeTier is the server's cts.SubtreeCache: a memory LRU over encoded
// sub-trees, with optional write-through of coarse entries to a disk store
// (a "subtrees" directory under the result cache's CacheDir), so the
// expensive upper levels of pre-restart work stay reusable.  One tier is
// shared by every job's flow, which is what makes cross-job incremental
// resubmission (the baseJob field) work: the base job's merges are already
// in the cache when the delta job runs.
type subtreeTier struct {
	mem  *cts.MemorySubtreeCache
	disk *store.Store // nil without a cache directory
	// peers are the sibling members consulted after both local tiers miss
	// (the cluster's cross-node sub-tree reuse); the set may be empty.
	peers *peerSet

	mu       sync.Mutex
	memHits  int64 // guarded by mu
	diskHits int64 // guarded by mu
	peerHits int64 // guarded by mu
	misses   int64 // guarded by mu
}

func newSubtreeTier(maxBytes int64, disk *store.Store, peers *peerSet) *subtreeTier {
	return &subtreeTier{mem: cts.NewMemorySubtreeCache(maxBytes), disk: disk, peers: peers}
}

// getLocal is the local-tier lookup shared by Get and the peer endpoint:
// memory first, then disk, promoting disk hits into the memory tier.  It
// never consults peers, so one peer read cannot fan out across the cluster.
func (t *subtreeTier) getLocal(key string) ([]byte, bool) {
	if v, ok := t.mem.Get(key); ok {
		t.mu.Lock()
		t.memHits++
		t.mu.Unlock()
		return v, true
	}
	if t.disk != nil {
		if v, ok := t.disk.Get(key); ok {
			t.mem.Put(key, v)
			t.mu.Lock()
			t.diskHits++
			t.mu.Unlock()
			return v, true
		}
	}
	return nil, false
}

// Get implements cts.SubtreeCache: memory, then disk, then — on incremental
// runs whose base ran on a sibling — the peers, promoting every hit into the
// memory tier.  A corrupt peer value is harmless: the subtree codec is
// checksummed, so it decodes as a miss and the merge recomputes.
func (t *subtreeTier) Get(key string) ([]byte, bool) {
	if v, ok := t.getLocal(key); ok {
		return v, true
	}
	if t.peers != nil && !t.peers.empty() {
		if v, ok := t.peers.getSubtree(key); ok {
			t.mem.Put(key, v)
			t.mu.Lock()
			t.peerHits++
			t.mu.Unlock()
			return v, true
		}
	}
	t.mu.Lock()
	t.misses++
	t.mu.Unlock()
	return nil, false
}

// Put implements cts.SubtreeCache: everything goes to memory, coarse values
// also write through to disk.
func (t *subtreeTier) Put(key string, value []byte) {
	t.mem.Put(key, value)
	if t.disk != nil && len(value) >= subtreeDiskMinBytes {
		t.disk.Put(key, value)
	}
}

// counters snapshots just the lookup counters (read per-series by the
// /metrics scrape).
func (t *subtreeTier) counters() (memHits, diskHits, peerHits, misses int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.memHits, t.diskHits, t.peerHits, t.misses
}

// stats snapshots the tier for GET /v1/stats.
func (t *subtreeTier) stats() *SubtreeStats {
	ms := t.mem.Stats()
	t.mu.Lock()
	st := &SubtreeStats{
		Entries:    ms.Entries,
		Bytes:      ms.Bytes,
		MaxBytes:   ms.MaxBytes,
		MemoryHits: t.memHits,
		DiskHits:   t.diskHits,
		PeerHits:   t.peerHits,
		Misses:     t.misses,
		Evictions:  ms.Evictions,
	}
	t.mu.Unlock()
	if t.disk != nil {
		ds := t.disk.Stats()
		st.Disk = &ds
	}
	return st
}
