package ctsserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/pkg/cts"
)

// jobTrace is one job's span tree: a root "job" span anchored at admission,
// a "queued" child covering the scheduler wait, a "run" child covering the
// synthesis, and one child span under "run" per observer stage execution
// (per level for the leveled stages).  Span durations come from the same
// measurements the rest of the system already reports — the job's lifecycle
// timestamps and the observer events' Elapsed — so the trace of a completed
// job is a replayable record, not a re-measurement: once the job is
// terminal, repeated renderings are byte-identical.
type jobTrace struct {
	tr     *obs.Trace
	root   int
	queued int

	mu  sync.Mutex
	run int // guarded by mu; -1 until the job starts
	// open maps stage/level to its open span while the stage runs.  Observer
	// emission is serialized per flow, but End races lifecycle calls from
	// other goroutines, hence the lock.
	open map[string]int // guarded by mu
}

// newJobTrace opens the root and queued spans at admission time.
func newJobTrace(created time.Time) *jobTrace {
	t := &jobTrace{tr: obs.NewTraceAt(created), run: -1, open: map[string]int{}}
	t.root = t.tr.StartAt(-1, "job", created)
	t.queued = t.tr.StartAt(t.root, "queued", created)
	return t
}

// markRunning closes the queued span and opens the run span at the moment a
// worker picked the job up.
func (t *jobTrace) markRunning(started time.Time) {
	t.tr.EndIn(t.queued, started.Sub(t.tr.Anchor()))
	t.mu.Lock()
	defer t.mu.Unlock()
	t.run = t.tr.StartAt(t.root, "run", started)
}

// stageKey names one stage execution; the leveled stages run once per level.
func stageKey(stage string, level int) string {
	if level > 0 {
		return fmt.Sprintf("%s/%d", stage, level)
	}
	return stage
}

// observe folds one observer event into the span tree.  Stage-start opens a
// span under run; stage-end closes it with the event's own Elapsed and
// annotates the merge-route batches with their pair and cache-reuse counts.
func (t *jobTrace) observe(e cts.Event) {
	switch e.Kind {
	case cts.EventStageStart:
		t.mu.Lock()
		parent := t.run
		if parent < 0 {
			parent = t.root
		}
		var attrs []obs.Attr
		if e.Level > 0 {
			attrs = append(attrs, obs.Attr{Key: "level", Value: fmt.Sprint(e.Level)})
		}
		t.open[stageKey(e.Stage, e.Level)] = t.tr.StartAt(parent, e.Stage, time.Now(), attrs...)
		t.mu.Unlock()
	case cts.EventStageEnd:
		key := stageKey(e.Stage, e.Level)
		t.mu.Lock()
		id, ok := t.open[key]
		if ok {
			delete(t.open, key)
		}
		t.mu.Unlock()
		if !ok {
			return
		}
		t.tr.EndIn(id, e.Elapsed)
		if e.Pairs > 0 {
			t.tr.SetAttr(id, "pairs", fmt.Sprint(e.Pairs))
		}
		if e.Reused > 0 {
			t.tr.SetAttr(id, "reused", fmt.Sprint(e.Reused))
		}
	}
}

// finish closes every remaining span with the job's terminal timestamps and
// stamps the outcome on the root.  Stages still open (a canceled run) end
// with the run; the queued span of a born-terminal job ends at finish.
func (t *jobTrace) finish(state JobState, cacheHit bool, started, finished time.Time) {
	anchor := t.tr.Anchor()
	t.mu.Lock()
	run := t.run
	for _, id := range t.open {
		t.tr.End(id) // the stage died with the run; now ≈ finished
	}
	t.open = map[string]int{}
	t.mu.Unlock()
	if run >= 0 {
		t.tr.EndIn(run, finished.Sub(started))
	}
	t.tr.EndIn(t.queued, finished.Sub(anchor)) // no-op unless born terminal
	t.tr.SetAttr(t.root, "state", string(state))
	if cacheHit {
		t.tr.SetAttr(t.root, "cacheHit", "true")
	}
	t.tr.EndIn(t.root, finished.Sub(anchor))
}

// tree renders the span forest for the wire.
func (t *jobTrace) tree() []*obs.SpanJSON { return t.tr.Tree() }
