package ctsserver

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/pkg/cts"
)

// Sink is the wire form of one clock sink: a name, a position in
// micrometres and an optional load capacitance in fF (zero selects the
// technology default).
type Sink struct {
	Name string  `json:"name,omitempty"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Cap  float64 `json:"cap,omitempty"`
}

// CTS converts the wire sink to the pipeline's sink type.
func (s Sink) CTS() cts.Sink {
	return cts.Sink{Name: s.Name, Pos: geom.Pt(s.X, s.Y), Cap: s.Cap}
}

// SinksToCTS converts a wire sink set to pipeline sinks.
func SinksToCTS(sinks []Sink) []cts.Sink {
	out := make([]cts.Sink, len(sinks))
	for i, s := range sinks {
		out[i] = s.CTS()
	}
	return out
}

// SinksFromCTS converts pipeline sinks to their wire form.
func SinksFromCTS(sinks []cts.Sink) []Sink {
	out := make([]Sink, len(sinks))
	for i, s := range sinks {
		out[i] = Sink{Name: s.Name, X: s.Pos.X, Y: s.Pos.Y, Cap: s.Cap}
	}
	return out
}

// JobRequest is the body of POST /v1/jobs: a sink set plus the synthesis
// parameters.  A nil Settings selects the flow defaults (the zero Settings
// defaults field by field, exactly as the cts.With… options do).  Verify
// enables the transient-simulation verify stage on the run.
type JobRequest struct {
	// Name labels the job in status reports and observer events (e.g. the
	// benchmark name); it does not participate in the result-cache key.
	Name     string        `json:"name,omitempty"`
	Sinks    []Sink        `json:"sinks"`
	Settings *cts.Settings `json:"settings,omitempty"`
	Verify   bool          `json:"verify,omitempty"`
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of a job: returned by POST /v1/jobs and
// GET /v1/jobs/{id}, and carried by the terminal "done" event of the SSE
// stream.  Result holds the cts.Result JSON once the job is done.
type JobStatus struct {
	ID    string   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State JobState `json:"state"`
	// Key is the content-addressed identity of the request
	// (cts.CanonicalKey over the effective settings and sinks).
	Key string `json:"key"`
	// CacheHit reports that the result was served from the result cache
	// without running synthesis.
	CacheHit bool   `json:"cacheHit"`
	Sinks    int    `json:"sinks"`
	Error    string `json:"error,omitempty"`
	// Created/Started/Finished are RFC 3339 timestamps; Started and
	// Finished are empty while the job has not reached them.
	Created  string `json:"created,omitempty"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	// Result is the cts.Result JSON of a done job.
	Result json.RawMessage `json:"result,omitempty"`
}

// Error codes used by the API beyond the cts.SinkErr validation codes.
const (
	ErrBadRequest = "bad-request"
	ErrBadSetting = "bad-settings"
	ErrNotFound   = "not-found"
	ErrQueueFull  = "queue-full"
	ErrDraining   = "draining"
)

// APIError is the structured error body of every non-2xx response, wrapped
// as {"error": {...}}.  Sink points at the offending sink for validation
// errors.  It implements the error interface, so the Client returns it
// directly.
type APIError struct {
	// HTTPStatus is the response status; not serialized.
	HTTPStatus int    `json:"-"`
	Code       string `json:"code"`
	Message    string `json:"message"`
	Sink       *int   `json:"sink,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("ctsserver: %s (%s)", e.Message, e.Code)
}

// errorBody is the JSON envelope of an APIError.
type errorBody struct {
	Error *APIError `json:"error"`
}

// SchedulerStats summarizes the job scheduler for GET /v1/stats.
type SchedulerStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queueDepth"`
	Queued     int   `json:"queued"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Canceled   int64 `json:"canceled"`
	Rejected   int64 `json:"rejected"`
	CacheHits  int64 `json:"cacheHits"`
	Draining   bool  `json:"draining"`
}

// CacheStats summarizes the result cache for GET /v1/stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats is the body of GET /v1/stats: scheduler and cache counters plus the
// aggregated per-stage synthesis metrics (the same cts.MetricsSnapshot the
// CLI's -metrics flag renders).
type Stats struct {
	Scheduler SchedulerStats      `json:"scheduler"`
	Cache     CacheStats          `json:"cache"`
	Metrics   cts.MetricsSnapshot `json:"metrics"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	Draining bool   `json:"draining"`
}

// SSE event types on GET /v1/jobs/{id}/events.
const (
	// EventTypeFlow carries one cts.WireEvent from the run's observer
	// stream.
	EventTypeFlow = "flow"
	// EventTypeDone terminates the stream and carries the final JobStatus.
	EventTypeDone = "done"
)

// rfc3339 renders a timestamp for the wire, empty when unset.
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
