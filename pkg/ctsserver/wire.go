package ctsserver

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/pkg/cts"
	"repro/pkg/ctsserver/store"
)

// Sink is the wire form of one clock sink: a name, a position in
// micrometres and an optional load capacitance in fF (zero selects the
// technology default).
type Sink struct {
	// Name identifies the sink; empty names are auto-generated ("sink_i").
	Name string `json:"name,omitempty"`
	// X and Y are the sink position in micrometres.
	X float64 `json:"x"`
	// Y is the position's second coordinate (see X).
	Y float64 `json:"y"`
	// Cap is the load capacitance in fF; zero selects the technology
	// default.
	Cap float64 `json:"cap,omitempty"`
}

// CTS converts the wire sink to the pipeline's sink type.
func (s Sink) CTS() cts.Sink {
	return cts.Sink{Name: s.Name, Pos: geom.Pt(s.X, s.Y), Cap: s.Cap}
}

// SinksToCTS converts a wire sink set to pipeline sinks.
func SinksToCTS(sinks []Sink) []cts.Sink {
	out := make([]cts.Sink, len(sinks))
	for i, s := range sinks {
		out[i] = s.CTS()
	}
	return out
}

// SinksFromCTS converts pipeline sinks to their wire form.
func SinksFromCTS(sinks []cts.Sink) []Sink {
	out := make([]Sink, len(sinks))
	for i, s := range sinks {
		out[i] = Sink{Name: s.Name, X: s.Pos.X, Y: s.Pos.Y, Cap: s.Cap}
	}
	return out
}

// Priority is a job's scheduling class.  The dispatcher always pops the
// highest class with queued work, so a high-priority job never waits behind
// a lower-priority one once a worker frees; within a class, earlier
// deadlines dispatch first and equal deadlines dispatch in submission
// order.  The zero value ("", like an absent wire field) means
// PriorityNormal.
type Priority string

const (
	// PriorityLow yields to everything else: batch and backfill work.
	PriorityLow Priority = "low"
	// PriorityNormal is the default class, used when the wire field is
	// absent or empty.
	PriorityNormal Priority = "normal"
	// PriorityHigh preempts the queue order (never a running job): the next
	// free worker takes the oldest high-priority job first.
	PriorityHigh Priority = "high"
)

// numPriorities is the number of scheduling classes, sizing the per-class
// queue-depth counters.
const numPriorities = 3

// rank orders priorities for dispatch; higher dispatches first.
func (p Priority) rank() int {
	switch p {
	case PriorityLow:
		return 0
	case PriorityHigh:
		return 2
	default: // "" and "normal"
		return 1
	}
}

// ParsePriority parses a wire priority: "low", "normal", "high", or empty
// (which selects PriorityNormal, the zero-value behavior of the wire
// field).
func ParsePriority(s string) (Priority, error) {
	switch Priority(s) {
	case PriorityLow, PriorityNormal, PriorityHigh:
		return Priority(s), nil
	case "":
		return PriorityNormal, nil
	}
	return PriorityNormal, fmt.Errorf("ctsserver: unknown priority %q (want low, normal, high)", s)
}

// JobRequest is the body of POST /v1/jobs: a sink set plus the synthesis
// parameters.  A nil Settings selects the flow defaults (the zero Settings
// defaults field by field, exactly as the cts.With… options do).  Verify
// enables the transient-simulation verify stage on the run.
type JobRequest struct {
	// Name labels the job in status reports and observer events (e.g. the
	// benchmark name); it does not participate in the result-cache key.
	Name string `json:"name,omitempty"`
	// Sinks is the clock sink set to synthesize; required, validated by
	// cts.ValidateSinks before any work runs.
	Sinks []Sink `json:"sinks"`
	// Settings are the synthesis parameters; nil (or any zero field)
	// defaults as the cts.With… options do.
	Settings *cts.Settings `json:"settings,omitempty"`
	// Verify enables the transient-simulation verify stage; verified runs
	// cache separately from unverified ones.
	Verify bool `json:"verify,omitempty"`
	// Priority selects the scheduling class; empty means normal.  It does
	// not participate in the result-cache key: a cached result serves every
	// priority.
	Priority Priority `json:"priority,omitempty"`
	// Deadline, when non-empty, is an RFC 3339 timestamp after which the
	// result is worthless to the client.  A job whose deadline passes before
	// it starts terminates as StateExpired without running synthesis (a
	// deadline already in the past expires the job at submission); a running
	// job is canceled through its context when the deadline passes and also
	// terminates as StateExpired.  The deadline does not participate in the
	// result-cache key, and a cache hit is served regardless of it.
	Deadline string `json:"deadline,omitempty"`
	// BaseJob, when non-empty, names an earlier job this request is a small
	// delta of (an ECO resubmission: a few sinks moved, added or dropped).
	// The job then runs through the incremental path, reusing every merged
	// sub-tree of prior work whose content key is unchanged; the result is
	// bit-identical to a from-scratch run and caches under the same key.
	// BaseJob is advisory — an exact result-cache hit is still served first,
	// and a cold subtree cache just recomputes everything — but the id must
	// name a job the server still remembers (404 unknown-base-job otherwise),
	// and the server must have a subtree cache (400 incremental-disabled
	// otherwise).  Reuse needs stable sink names across base and delta:
	// renamed sinks change every enclosing sub-tree's key.
	BaseJob string `json:"baseJob,omitempty"`
}

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: synthesis in progress on a worker.
	StateRunning JobState = "running"
	// StateDone: finished; JobStatus.Result carries the cts.Result JSON.
	StateDone JobState = "done"
	// StateFailed: synthesis returned an error (JobStatus.Error).
	StateFailed JobState = "failed"
	// StateCanceled: ended by DELETE (or a timed-out drain) before
	// completing.
	StateCanceled JobState = "canceled"
	// StateExpired: the job's deadline passed before it produced a result —
	// either before it started (no synthesis ran) or mid-run (the run was
	// canceled through its context).  Expired jobs are retryable: resubmit
	// the identical request with a later (or no) deadline; nothing about
	// the expiry is remembered against the request's cache key.
	StateExpired JobState = "expired"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateExpired
}

// JobStatus is the wire form of a job: returned by POST /v1/jobs and
// GET /v1/jobs/{id}, and carried by the terminal "done" event of the SSE
// stream.  Result holds the cts.Result JSON once the job is done.
type JobStatus struct {
	// ID is the server-minted job identity for GET/DELETE/events calls.
	ID string `json:"id"`
	// Name echoes the request's label.
	Name string `json:"name,omitempty"`
	// State is the lifecycle state; Terminal states never change again.
	State JobState `json:"state"`
	// Priority echoes the request's scheduling class (always concrete on
	// the wire: an absent request field reports as "normal").
	Priority Priority `json:"priority"`
	// Deadline echoes the request's deadline as RFC 3339, empty when none
	// was set.
	Deadline string `json:"deadline,omitempty"`
	// BaseJob echoes the request's base-job id for incremental runs.
	BaseJob string `json:"baseJob,omitempty"`
	// Key is the content-addressed identity of the request
	// (cts.CanonicalKey over the effective settings and sinks).
	Key string `json:"key"`
	// CacheHit reports that the result was served from the result cache
	// without running synthesis.
	CacheHit bool `json:"cacheHit"`
	// Sinks is the request's sink count.
	Sinks int `json:"sinks"`
	// Error describes why the job failed, was canceled or expired.
	Error string `json:"error,omitempty"`
	// Created/Started/Finished are RFC 3339 timestamps; Started and
	// Finished are empty while the job has not reached them.
	Created string `json:"created,omitempty"`
	// Started is when a worker picked the job up (empty until then).
	Started string `json:"started,omitempty"`
	// Finished is when the job went terminal (empty until then).
	Finished string `json:"finished,omitempty"`
	// Result is the cts.Result JSON of a done job.
	Result json.RawMessage `json:"result,omitempty"`
}

// Error codes used by the API beyond the cts.SinkErr validation codes.
const (
	// ErrBadRequest: undecodable body, oversized sink set, or a malformed
	// priority/deadline field.
	ErrBadRequest = "bad-request"
	// ErrBadSetting: the settings failed cts.New validation.
	ErrBadSetting = "bad-settings"
	// ErrNotFound: the job id is unknown (never assigned, or already
	// forgotten by retention).
	ErrNotFound = "not-found"
	// ErrQueueFull: admission would exceed the queue depth; the 429
	// response carries a Retry-After header.
	ErrQueueFull = "queue-full"
	// ErrDraining: the server is shutting down and rejects new work.
	ErrDraining = "draining"
	// ErrUnknownBase: the request's baseJob names a job the server does not
	// remember (never assigned, or already dropped by retention).
	ErrUnknownBase = "unknown-base-job"
	// ErrIncrementalDisabled: the request set baseJob but the server runs
	// without a subtree cache (SubtreeCacheBytes < 0).
	ErrIncrementalDisabled = "incremental-disabled"
	// ErrMemberUnreachable: the gateway exhausted every ring replica for the
	// key without finding a member that would take (or still had) the job.
	// The 503 response carries a Retry-After header — by the next attempt the
	// health checker has usually found a live member.
	ErrMemberUnreachable = "member-unreachable"
)

// retryAfterSeconds is the Retry-After hint on 429 queue-full responses: a
// queue this saturated typically frees a slot within a couple of job
// completions, so clients are told to back off briefly rather than hammer.
const retryAfterSeconds = 1

// APIError is the structured error body of every non-2xx response, wrapped
// as {"error": {...}}.  Sink points at the offending sink for validation
// errors.  It implements the error interface, so the Client returns it
// directly.
type APIError struct {
	// HTTPStatus is the response status; not serialized.
	HTTPStatus int `json:"-"`
	// Code is the machine-readable error class (the Err… constants, or a
	// cts.SinkErr… validation code).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Sink is the index of the offending sink for validation errors.
	Sink *int `json:"sink,omitempty"`
	// RetryAfter, when positive, is the server's back-off hint in seconds;
	// it is also sent as the response's Retry-After header (429 queue-full
	// carries it).
	RetryAfter int `json:"retryAfter,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("ctsserver: %s (%s)", e.Message, e.Code)
}

// errorBody is the JSON envelope of an APIError.
type errorBody struct {
	Error *APIError `json:"error"`
}

// SchedulerStats summarizes the job scheduler for GET /v1/stats.
type SchedulerStats struct {
	// Workers is the pool size; QueueDepth the admission bound.
	Workers int `json:"workers"`
	// QueueDepth is the accepted-but-not-running bound (429 beyond it).
	QueueDepth int `json:"queueDepth"`
	// Queued is the live queued-job count; QueuedByPriority splits it per
	// scheduling class (keys "low", "normal", "high").
	Queued int `json:"queued"`
	// QueuedByPriority is Queued split per scheduling class.
	QueuedByPriority map[Priority]int `json:"queuedByPriority"`
	// Running is the number of jobs currently on a worker.
	Running int `json:"running"`
	// Submitted counts every admitted job (including born-terminal ones);
	// each eventually lands in exactly one of Completed, Failed, Canceled
	// or Expired.
	Submitted int64 `json:"submitted"`
	// Completed counts jobs that finished with a result.
	Completed int64 `json:"completed"`
	// Failed counts jobs whose synthesis returned an error.
	Failed int64 `json:"failed"`
	// Canceled counts jobs ended by DELETE or a timed-out drain.
	Canceled int64 `json:"canceled"`
	// Expired counts jobs terminated by their deadline.
	Expired int64 `json:"expired"`
	// Rejected counts submissions bounced at admission (queue full); they
	// are not part of Submitted.
	Rejected int64 `json:"rejected"`
	// CacheHits counts submissions served without synthesis (memory- or
	// disk-served).
	CacheHits int64 `json:"cacheHits"`
	// Draining reports that intake has stopped for shutdown.
	Draining bool `json:"draining"`
}

// CacheStats summarizes the result cache for GET /v1/stats: the in-memory
// LRU tier, plus the disk tier when one is configured.
type CacheStats struct {
	// Entries/Bytes/MaxBytes describe the in-memory tier's occupancy.
	Entries int `json:"entries"`
	// Bytes is the memory tier's current total over stored Result JSON.
	Bytes int64 `json:"bytes"`
	// MaxBytes is the memory tier's byte budget (<= 0: tier disabled).
	MaxBytes int64 `json:"maxBytes"`
	// Hits counts lookups answered by either tier (MemoryHits + DiskHits;
	// kept for wire compatibility with pre-split clients).
	Hits int64 `json:"hits"`
	// MemoryHits counts lookups the in-memory tier answered directly.
	MemoryHits int64 `json:"memoryHits"`
	// DiskHits counts lookups the memory tier missed but the disk tier
	// answered (each also promotes the entry back into memory).
	DiskHits int64 `json:"diskHits"`
	// PeerHits counts submissions both local tiers missed but a sibling
	// member's cache answered (cluster mode only; each hit is re-cached
	// locally).  Peer hits are not part of Hits, which stays local-only.
	PeerHits int64 `json:"peerHits,omitempty"`
	// Misses counts lookups neither tier could answer.
	Misses int64 `json:"misses"`
	// Evictions counts memory-tier LRU evictions.
	Evictions int64 `json:"evictions"`
	// Disk is the disk tier's snapshot; nil when the server runs without a
	// cache directory.
	Disk *store.Stats `json:"disk,omitempty"`
	// Subtrees is the subtree tier backing incremental (baseJob) runs; nil
	// when the server runs with the tier disabled.
	Subtrees *SubtreeStats `json:"subtrees,omitempty"`
}

// SubtreeStats summarizes the subtree cache tier for GET /v1/stats: the
// per-merge sub-tree values behind incremental (baseJob) synthesis.  Counter
// semantics mirror CacheStats, but per sub-tree lookup rather than per job.
type SubtreeStats struct {
	// Entries/Bytes/MaxBytes describe the in-memory tier's occupancy.
	Entries int `json:"entries"`
	// Bytes is the memory tier's current total over encoded sub-trees.
	Bytes int64 `json:"bytes"`
	// MaxBytes is the memory tier's byte budget (<= 0: unbounded).
	MaxBytes int64 `json:"maxBytes"`
	// MemoryHits counts sub-tree lookups the memory tier answered.
	MemoryHits int64 `json:"memoryHits"`
	// DiskHits counts lookups answered by the disk tier (and promoted).
	DiskHits int64 `json:"diskHits"`
	// PeerHits counts lookups both local tiers missed but a sibling member
	// answered (cluster mode, incremental runs only; promoted into memory).
	PeerHits int64 `json:"peerHits,omitempty"`
	// Misses counts lookups neither tier could answer (each one is a merge
	// recomputed from scratch).
	Misses int64 `json:"misses"`
	// Evictions counts memory-tier LRU evictions.
	Evictions int64 `json:"evictions"`
	// Disk is the disk tier's snapshot; nil when the server runs without a
	// cache directory.
	Disk *store.Stats `json:"disk,omitempty"`
}

// LatencySummary condenses one latency histogram for GET /v1/stats: the
// observation count and sum plus bucket-interpolated percentiles (the same
// estimator /metrics consumers apply to the exported buckets, so the two
// views agree).
type LatencySummary struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// SumSeconds is the sum of observed latencies in seconds.
	SumSeconds float64 `json:"sumSeconds"`
	// P50Seconds is the estimated median, interpolated from the buckets.
	P50Seconds float64 `json:"p50Seconds"`
	// P90Seconds is the estimated 90th percentile.
	P90Seconds float64 `json:"p90Seconds"`
	// P99Seconds is the estimated 99th percentile.
	P99Seconds float64 `json:"p99Seconds"`
}

// PriorityLatency groups one scheduling class's latency summaries.
type PriorityLatency struct {
	// QueueWait is the admission-to-start wait of jobs that started.
	QueueWait LatencySummary `json:"queueWait"`
	// Run is the start-to-finish synthesis duration of jobs that started.
	Run LatencySummary `json:"run"`
	// E2E is the admission-to-terminal latency of every job, born-terminal
	// ones (cache hits, born-expired) included.
	E2E LatencySummary `json:"e2e"`
}

// Stats is the body of GET /v1/stats: scheduler and cache counters plus the
// aggregated per-stage synthesis metrics (the same cts.MetricsSnapshot the
// CLI's -metrics flag renders) and the per-priority latency summaries.
type Stats struct {
	// Scheduler is the queue/worker/terminal-state summary.
	Scheduler SchedulerStats `json:"scheduler"`
	// Cache is the two-tier result-cache summary.
	Cache CacheStats `json:"cache"`
	// Metrics aggregates every job's observer stream per stage.
	Metrics cts.MetricsSnapshot `json:"metrics"`
	// UptimeSeconds is the time since the server was assembled.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// Latency is the per-priority latency summary (every class present,
	// observed or not); the same histograms back /metrics.
	Latency map[Priority]PriorityLatency `json:"latency"`
}

// JobTrace is the body of GET /v1/jobs/{id}/trace: the job's span tree.
// Spans holds the root "job" span with "queued", "run" and per-stage child
// spans nested under it; offsets and durations are milliseconds from the
// job's admission.  On a terminal job the tree is frozen and replays
// byte-identically; on a live job open spans carry open=true.
type JobTrace struct {
	// ID is the job id the trace belongs to.
	ID string `json:"id"`
	// Name echoes the request's label.
	Name string `json:"name,omitempty"`
	// State is the job's lifecycle state at rendering time.
	State JobState `json:"state"`
	// Spans is the span forest (in practice a single "job" root).
	Spans []*obs.SpanJSON `json:"spans"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status string `json:"status"` // "ok" or "draining"
	// Draining mirrors Status for programmatic checks.
	Draining bool `json:"draining"`
}

// GatewayStats summarizes the gateway's own routing work for the cluster
// view of GET /v1/stats.
type GatewayStats struct {
	// Members is the configured member count; Healthy of them currently pass
	// health checks (a degraded cluster reports Healthy < Members).
	Members int `json:"members"`
	// Healthy is the number of members currently passing health checks.
	Healthy int `json:"healthy"`
	// Submitted counts jobs accepted at the gateway.
	Submitted int64 `json:"submitted"`
	// Rerouted counts dispatches that left a key's ring owner for a further
	// replica (the owner was down, refused, or dropped mid-job).
	Rerouted int64 `json:"rerouted"`
	// Jobs is the number of jobs the gateway currently remembers.
	Jobs int `json:"jobs"`
	// UptimeSeconds is the time since the gateway was assembled.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// MemberStatus is one member's slice of the cluster view of GET /v1/stats.
type MemberStatus struct {
	// URL is the member's base URL (its ring identity).
	URL string `json:"url"`
	// Healthy reports whether the member answered the stats poll; a degraded
	// member has Healthy false, an Error, and no Stats.
	Healthy bool `json:"healthy"`
	// Error describes why an unhealthy member could not be polled.
	Error string `json:"error,omitempty"`
	// Stats is the member's own GET /v1/stats body; nil when unhealthy.
	Stats *Stats `json:"stats,omitempty"`
}

// ClusterStats is the body of GET /v1/stats on a gateway: the gateway's own
// routing counters, each member's status and stats, and a merged view that
// sums the members' counters.  Merged omits the per-priority Latency map —
// percentiles cannot be summed from summaries; cluster-wide percentiles come
// from the gateway's /metrics, where the members' histogram buckets merge
// exactly.
type ClusterStats struct {
	// Gateway is the gateway's own routing summary.
	Gateway GatewayStats `json:"gateway"`
	// Members lists every configured member's status and stats.
	Members []MemberStatus `json:"members"`
	// Merged sums the healthy members' scheduler, cache and synthesis
	// counters (occupancy gauges like queue depth sum too: the cluster-wide
	// totals).
	Merged Stats `json:"merged"`
}

// SSE event types on GET /v1/jobs/{id}/events.
const (
	// EventTypeFlow carries one cts.WireEvent from the run's observer
	// stream.
	EventTypeFlow = "flow"
	// EventTypeDone terminates the stream and carries the final JobStatus.
	EventTypeDone = "done"
)

// rfc3339 renders a timestamp for the wire, empty when unset.
func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
